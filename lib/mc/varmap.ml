open Rfn_circuit
module Bdd = Rfn_bdd.Bdd
module Force = Rfn_bdd.Force

type role = Cur of int | Nxt of int | Inp of int

type t = {
  man : Bdd.man;
  view : Sview.t;
  cur : (int, int) Hashtbl.t;
  nxt : (int, int) Hashtbl.t;
  inp : (int, int) Hashtbl.t;
  roles : (int, role) Hashtbl.t;
  initial_inp : int list;
}

(* FORCE order over the view's signals: one hyperedge per gate (the
   gate with its fanins) and one per register (the register with its
   next-state input), then keep only the variable-bearing signals. *)
let ordered_var_signals ?rank_of view =
  let c = view.Sview.circuit in
  let n = Circuit.num_signals c in
  let idx_of = Array.make n (-1) in
  let count = ref 0 in
  Bitset.iter
    (fun s ->
      idx_of.(s) <- !count;
      incr count)
    view.Sview.inside;
  let sig_of = Array.make !count 0 in
  Bitset.iter (fun s -> sig_of.(idx_of.(s)) <- s) view.Sview.inside;
  let edges = ref [] in
  Bitset.iter
    (fun s ->
      if not (Sview.is_free view s) then
        match Circuit.node c s with
        | Circuit.Gate (_, fanins) ->
          let e =
            idx_of.(s)
            :: (Array.to_list fanins
               |> List.filter_map (fun f ->
                      if idx_of.(f) >= 0 then Some idx_of.(f) else None))
          in
          edges := e :: !edges
        | Circuit.Reg { next; _ } when idx_of.(next) >= 0 ->
          edges := [ idx_of.(s); idx_of.(next) ] :: !edges
        | _ -> ())
    view.Sview.inside;
  (* Seed FORCE with a previous iteration's order when provided:
     previously-placed signals keep their relative order up front, new
     signals follow in index order. *)
  let init =
    match rank_of with
    | None -> None
    | Some rank ->
      let vertices = Array.init !count (fun i -> i) in
      let key i =
        match rank sig_of.(i) with
        | Some r -> (0, r, i)
        | None -> (1, i, i)
      in
      Array.sort (fun a b -> compare (key a) (key b)) vertices;
      let pos = Array.make !count 0 in
      Array.iteri (fun level v -> pos.(v) <- level) vertices;
      Some pos
  in
  let pos = Force.order ?init ~nvars:!count ~edges:!edges () in
  let var_signals =
    Array.to_list view.Sview.regs @ Array.to_list view.Sview.free_inputs
  in
  List.sort (fun a b -> compare pos.(idx_of.(a)) pos.(idx_of.(b))) var_signals

let signal_rank t s =
  match Hashtbl.find_opt t.cur s with
  | Some v -> Some v
  | None -> Hashtbl.find_opt t.inp s

let make ?(node_limit = max_int) ?previous view =
  let rank_of =
    Option.map (fun prev s -> signal_rank prev s) previous
  in
  let signals = ordered_var_signals ?rank_of view in
  let nvars =
    List.fold_left
      (fun acc s -> acc + if Circuit.is_reg view.Sview.circuit s
                             && not (Sview.is_free view s) then 2 else 1)
      0 signals
  in
  let man = Bdd.create ~node_limit ~nvars () in
  let cur = Hashtbl.create 97
  and nxt = Hashtbl.create 97
  and inp = Hashtbl.create 97
  and roles = Hashtbl.create 197 in
  let level = ref 0 in
  let initial_inp = ref [] in
  List.iter
    (fun s ->
      if Circuit.is_reg view.Sview.circuit s && not (Sview.is_free view s)
      then begin
        Hashtbl.replace cur s !level;
        Hashtbl.replace roles !level (Cur s);
        Hashtbl.replace nxt s (!level + 1);
        Hashtbl.replace roles (!level + 1) (Nxt s);
        level := !level + 2
      end
      else begin
        Hashtbl.replace inp s !level;
        Hashtbl.replace roles !level (Inp s);
        initial_inp := !level :: !initial_inp;
        incr level
      end)
    signals;
  { man; view; cur; nxt; inp; roles; initial_inp = List.rev !initial_inp }

(* In-place growth for a refinement delta: carried signals keep their
   variables (a promoted pseudo-input's [Inp] variable is re-rolled as
   its [Cur] variable — the reason downstream cone BDDs survive
   growth), new variables are appended at the bottom of the order. *)
let grow t ~view (d : Abstraction.delta) =
  let initial_inp = ref t.initial_inp in
  let drop_inp s =
    match Hashtbl.find_opt t.inp s with
    | None -> None
    | Some v ->
      Hashtbl.remove t.inp s;
      initial_inp := List.filter (fun x -> x <> v) !initial_inp;
      Some v
  in
  let add_fresh_reg r =
    (* a stale [Inp] binding (a min-cut cut variable from an earlier
       hybrid extraction) must not shadow the register's state role *)
    (match drop_inp r with
    | Some v -> Hashtbl.remove t.roles v
    | None -> ());
    let v = Bdd.add_vars t.man 2 in
    Hashtbl.replace t.cur r v;
    Hashtbl.replace t.roles v (Cur r);
    Hashtbl.replace t.nxt r (v + 1);
    Hashtbl.replace t.roles (v + 1) (Nxt r)
  in
  List.iter
    (fun p ->
      match drop_inp p with
      | Some v ->
        Hashtbl.replace t.cur p v;
        Hashtbl.replace t.roles v (Cur p);
        let nv = Bdd.add_vars t.man 1 in
        Hashtbl.replace t.nxt p nv;
        Hashtbl.replace t.roles nv (Nxt p)
      | None -> add_fresh_reg p)
    d.Abstraction.promoted;
  List.iter add_fresh_reg d.Abstraction.fresh_regs;
  (* Collect the appended input variables in reverse and splice them in
     with one [List.rev] — appending to [initial_inp] one element at a
     time inside the iteration is quadratic in the input count. *)
  let appended_inp = ref [] in
  List.iter
    (fun s ->
      let v =
        match Hashtbl.find_opt t.inp s with
        | Some v -> v
        | None ->
          let v = Bdd.add_vars t.man 1 in
          Hashtbl.replace t.inp s v;
          Hashtbl.replace t.roles v (Inp s);
          v
      in
      appended_inp := v :: !appended_inp)
    d.Abstraction.new_free_inputs;
  { t with view; initial_inp = !initial_inp @ List.rev !appended_inp }

(* Retarget to a different view of the same circuit (a new property's
   initial abstraction) while preserving every carried signal's
   "value-now" variable: a register of both views keeps its [Cur]/[Nxt]
   pair, a register output that became free re-rolls its [Cur] variable
   as its [Inp] variable (the demotion dual of [grow]'s promotion), a
   free signal that became a register re-rolls its [Inp] variable as
   [Cur] and appends a [Nxt], and signals new to the view get appended
   variables. Free signals compile to their [Inp] variable and register
   outputs to their [Cur] variable, so preserving the index keeps every
   cone BDD over carried signals valid verbatim. Fresh tables are
   built, dropping stale roles (the [Nxt] variable of a demoted
   register, min-cut cut variables, signals that left the view). *)
let rebase t ~view =
  let cur = Hashtbl.create 97
  and nxt = Hashtbl.create 97
  and inp = Hashtbl.create 97
  and roles = Hashtbl.create 197 in
  (* [Cur] before [Inp]: a state register may also carry a stale
     min-cut input alias, but its value-now variable — the one the
     session memo's cones mention — is the current-state one. *)
  let value_now s =
    match Hashtbl.find_opt t.cur s with
    | Some v -> Some v
    | None -> Hashtbl.find_opt t.inp s
  in
  Array.iter
    (fun r ->
      (match value_now r with
      | Some v ->
        Hashtbl.replace cur r v;
        Hashtbl.replace roles v (Cur r)
      | None ->
        let v = Bdd.add_vars t.man 1 in
        Hashtbl.replace cur r v;
        Hashtbl.replace roles v (Cur r));
      match Hashtbl.find_opt t.nxt r with
      | Some v ->
        Hashtbl.replace nxt r v;
        Hashtbl.replace roles v (Nxt r)
      | None ->
        let v = Bdd.add_vars t.man 1 in
        Hashtbl.replace nxt r v;
        Hashtbl.replace roles v (Nxt r))
    view.Sview.regs;
  let inp_vars = ref [] in
  Array.iter
    (fun s ->
      let v =
        match value_now s with
        | Some v -> v
        | None -> Bdd.add_vars t.man 1
      in
      Hashtbl.replace inp s v;
      Hashtbl.replace roles v (Inp s);
      inp_vars := v :: !inp_vars)
    view.Sview.free_inputs;
  { t with view; cur; nxt; inp; roles; initial_inp = List.sort compare !inp_vars }

let replica ?node_limit t =
  let node_limit =
    match node_limit with Some l -> l | None -> Bdd.node_limit t.man
  in
  let man = Bdd.create ~node_limit ~nvars:(Bdd.nvars t.man) () in
  {
    t with
    man;
    cur = Hashtbl.copy t.cur;
    nxt = Hashtbl.copy t.nxt;
    inp = Hashtbl.copy t.inp;
    roles = Hashtbl.copy t.roles;
  }

let remap t ~man ~map =
  let tr tbl =
    let tbl' = Hashtbl.create (Hashtbl.length tbl) in
    Hashtbl.iter (fun s v -> Hashtbl.replace tbl' s (map v)) tbl;
    tbl'
  in
  let roles = Hashtbl.create (Hashtbl.length t.roles) in
  Hashtbl.iter (fun v r -> Hashtbl.replace roles (map v) r) t.roles;
  {
    t with
    man;
    cur = tr t.cur;
    nxt = tr t.nxt;
    inp = tr t.inp;
    roles;
    initial_inp = List.map map t.initial_inp;
  }

let man t = t.man
let view t = t.view

(* A miss here is a caller bug (asking for a role the signal does not
   carry), so the error names the accessor, the signal and its role —
   a bare [Not_found] escaping from deep inside the fixpoint engine is
   undebuggable. *)
let find_var what tbl t s =
  match Hashtbl.find_opt tbl s with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Varmap.%s: signal %d (%s) has no such variable" what s
         (Circuit.name t.view.Sview.circuit s))

let cur_var t s = find_var "cur_var" t.cur t s
let nxt_var t s = find_var "nxt_var" t.nxt t s
let inp_var t s = find_var "inp_var" t.inp t s
let cur_var_opt t s = Hashtbl.find_opt t.cur s
let nxt_var_opt t s = Hashtbl.find_opt t.nxt s
let inp_var_opt t s = Hashtbl.find_opt t.inp s
let has_inp_var t s = Hashtbl.mem t.inp s

let role t v =
  match Hashtbl.find_opt t.roles v with
  | Some r -> r
  | None ->
    invalid_arg
      (Printf.sprintf "Varmap.role: BDD variable %d has no allocated role" v)

let vars_of tbl = Hashtbl.fold (fun _ v acc -> v :: acc) tbl []

let cur_vars t = List.sort compare (vars_of t.cur)
let nxt_vars t = List.sort compare (vars_of t.nxt)
let inp_vars t = t.initial_inp

let add_input_vars t signals =
  let fresh = List.filter (fun s -> not (Hashtbl.mem t.inp s)) signals in
  match fresh with
  | [] -> ()
  | _ ->
    let first = Bdd.add_vars t.man (List.length fresh) in
    List.iteri
      (fun i s ->
        Hashtbl.replace t.inp s (first + i);
        Hashtbl.replace t.roles (first + i) (Inp s))
      fresh

let rename_next_to_cur t f =
  Bdd.rename t.man
    (fun v ->
      match Hashtbl.find_opt t.roles v with
      | Some (Nxt s) -> cur_var t s
      | _ -> v)
    f

let cube_of_bdd_cube t literals =
  List.map
    (fun (v, b) ->
      match role t v with
      | Cur s | Inp s -> (s, b)
      | Nxt _ ->
        invalid_arg "Varmap.cube_of_bdd_cube: next-state variable in cube")
    literals
