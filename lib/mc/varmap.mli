(** BDD variable allocation for a subcircuit view.

    Each register of the view gets a current-state and a next-state
    variable at adjacent levels; each free input gets one variable.
    Levels are assigned by the FORCE heuristic over the view's circuit
    graph, so related state bits sit next to each other — the static
    order the fixpoint engine starts from.

    Extra input variables can be appended later for signals that become
    cut points (the hybrid engine's min-cut inputs). *)

type role =
  | Cur of int  (** current-state variable of a register signal *)
  | Nxt of int  (** next-state variable of a register signal *)
  | Inp of int  (** input variable of a free-input (or cut) signal *)

type t

val make : ?node_limit:int -> ?previous:t -> Rfn_circuit.Sview.t -> t
(** Creates the manager and allocates variables for the view's
    registers and free inputs. [previous] seeds the FORCE ordering with
    the order of a varmap from an earlier refinement iteration — the
    paper saves the BDD variable ordering at the end of Step 2 and
    reuses it as the next iteration's initial ordering. *)

val signal_rank : t -> int -> int option
(** Level of the variable carrying a signal (its [Cur] or [Inp]
    variable), if allocated — the hand-off {!make}'s [previous] uses. *)

val grow : t -> view:Rfn_circuit.Sview.t -> Rfn_circuit.Abstraction.delta -> t
(** In-place growth for a refinement delta, the persistent-session
    alternative to a fresh {!make}: every carried signal keeps its
    variable — in particular a promoted pseudo-input's [Inp] variable
    becomes its [Cur] variable, so cone BDDs built over the old view
    stay valid verbatim — and new variables (next-state variables of
    promoted registers, both variables of fresh registers, variables of
    newly exposed free inputs) are appended at the bottom of the order
    with {!Rfn_bdd.Bdd.add_vars}. Mutates the shared tables: the
    argument must not be used afterwards; use the returned map (which
    carries the new [view]). Appended variables degrade the interleaved
    order quality — the session layer measures the node count and falls
    back to sifting or a fresh FORCE rebuild when growth blows up. *)

val rebase : t -> view:Rfn_circuit.Sview.t -> t
(** Retarget the varmap to a {e different} view of the same circuit —
    a new property's initial abstraction — keeping the manager and
    preserving every carried signal's value-now variable: registers of
    both views keep their [Cur]/[Nxt] pair, a register output that
    became free re-rolls its [Cur] variable as its [Inp] variable (the
    demotion dual of {!grow}'s promotion), a free signal that became a
    register re-rolls its [Inp] variable as [Cur] (appending a [Nxt]),
    and signals new to the view get appended variables. Because free
    signals compile to their [Inp] variable and register outputs to
    their [Cur] variable, every cone BDD over carried signals stays
    valid verbatim — the cross-property warm-session reuse of the
    serve layer. Builds fresh tables (the argument stays usable) and
    drops stale roles; [initial_inp] is rebuilt to exactly the new
    view's free-input variables. *)

val replica : ?node_limit:int -> t -> t
(** A copy of the varmap over a {e fresh, empty} manager with the same
    variable count and the identical signal↦variable assignment
    (including stale min-cut input variables, so subsequent {!grow}
    calls allocate the same indices as they would on the original).
    [node_limit] defaults to the original manager's. The from-scratch
    reference mode of the session layer: same order, no reuse. *)

val remap : t -> man:Rfn_bdd.Bdd.man -> map:(int -> int) -> t
(** Re-express the varmap over another manager whose variables are a
    permutation of this one's ([map old_var = new_level], total on the
    variable range) — the hand-off from [Rfn_bdd.Reorder.sift]/
    [improve], which rebuild live BDDs into a fresh manager under a
    better order. *)

val man : t -> Rfn_bdd.Bdd.man
val view : t -> Rfn_circuit.Sview.t

val cur_var : t -> int -> int
(** Current-state variable of a register signal. Raises
    [Invalid_argument] — naming the signal — when the signal carries no
    such variable; callers that probe use {!cur_var_opt}. *)

val nxt_var : t -> int -> int
val inp_var : t -> int -> int
(** Input variable of a free input or added cut signal. Both raise
    [Invalid_argument] like {!cur_var}. *)

val cur_var_opt : t -> int -> int option
val nxt_var_opt : t -> int -> int option
val inp_var_opt : t -> int -> int option
(** Non-raising probes for the three roles. *)

val has_inp_var : t -> int -> bool

val role : t -> int -> role
(** Role of a BDD variable. Raises [Invalid_argument] for a variable
    without an allocated role. *)

val cur_vars : t -> int list
val nxt_vars : t -> int list
val inp_vars : t -> int list
(** Input variables allocated by [make] (excludes later additions). *)

val add_input_vars : t -> int list -> unit
(** Allocate input variables (at the bottom of the order) for signals
    that do not have one — used for min-cut signals. Idempotent per
    signal. *)

val rename_next_to_cur : t -> Rfn_bdd.Bdd.t -> Rfn_bdd.Bdd.t
(** Rename every next-state variable to the matching current-state
    variable (fast structural relabeling: the interleaved order makes
    the map monotone). *)

val cube_of_bdd_cube : t -> (int * bool) list -> (int * bool) list
(** Translate a BDD cube (over variables) to signal space, mapping
    [Cur]/[Inp] variables to their signals. Next-state variables are
    rejected with [Invalid_argument]. *)
