module Bdd = Rfn_bdd.Bdd
module Telemetry = Rfn_obs.Telemetry

let c_steps = Telemetry.counter "mc.fixpoint_steps"
let g_frontier = Telemetry.gauge "mc.frontier_size"
let g_reached = Telemetry.gauge "mc.reached_size"

type outcome =
  | Proved
  | Reached of int
  | Closed of int
  | Aborted of Rfn_failure.resource

type result = {
  outcome : outcome;
  rings : Bdd.t array;
  reached : Bdd.t;
  steps : int;
  seconds : float;
}

let bad_predicate vm ~fn ~bad =
  let man = Varmap.man vm in
  Bdd.exists man (Varmap.inp_vars vm) (fn bad)

let run ?(max_steps = max_int) ?max_seconds ?(stop_at_bad = true) ?care img ~vm
    ~init ~bad_states =
  let man = Varmap.man vm in
  let restrict =
    match care with
    | None -> fun set -> set
    | Some care -> fun set -> Bdd.dand man set care
  in
  let init = restrict init in
  let started = Telemetry.now () in
  let elapsed () = Telemetry.now () -. started in
  let over_time () =
    match max_seconds with Some b -> elapsed () > b | None -> false
  in
  let rings = ref [ init ] in
  let first_hit = ref None in
  let touches set = not (Bdd.is_zero (Bdd.dand man set bad_states)) in
  let finish outcome steps reached =
    {
      outcome;
      rings = Array.of_list (List.rev !rings);
      reached;
      steps;
      seconds = elapsed ();
    }
  in
  if touches init && stop_at_bad then finish (Reached 0) 0 init
  else begin
    if touches init then first_hit := Some 0;
    let closed steps reached =
      match !first_hit with
      | Some k -> finish (Closed k) steps reached
      | None -> finish Proved steps reached
    in
    let rec loop step reached frontier =
      if step >= max_steps then finish (Aborted Rfn_failure.Steps) step reached
      else if over_time () then finish (Aborted Rfn_failure.Time) step reached
      else begin
        (* Collect dead intermediates before each image once the store
           is three-quarters full; protected structures (transition
           clusters, cone tables) survive automatically. *)
        if
          Bdd.node_limit man < max_int
          && 4 * Bdd.num_nodes man > 3 * Bdd.node_limit man
        then begin
          let roots =
            match care with
            | Some c -> c :: reached :: bad_states :: !rings
            | None -> reached :: bad_states :: !rings
          in
          Bdd.gc man ~roots
        end;
        match
          let image = Image.post img frontier in
          Bdd.diff man (restrict image) reached
        with
        | exception Bdd.Limit_exceeded ->
          finish (Aborted Rfn_failure.Nodes) step reached
        | fresh ->
          Telemetry.incr c_steps;
          if Bdd.is_zero fresh then closed step reached
          else begin
            rings := fresh :: !rings;
            let reached = Bdd.dor man reached fresh in
            (* BDD sizing is O(nodes): only when telemetry is recording *)
            if Telemetry.enabled () then begin
              Telemetry.record g_frontier (Bdd.size man fresh);
              Telemetry.record g_reached (Bdd.size man reached)
            end;
            if touches fresh && !first_hit = None then begin
              first_hit := Some (step + 1);
              if stop_at_bad then
                finish (Reached (step + 1)) (step + 1) reached
              else loop (step + 1) reached fresh
            end
            else loop (step + 1) reached fresh
          end
      end
    in
    loop 0 init init
  end
