open Rfn_circuit
module Bdd = Rfn_bdd.Bdd
module Telemetry = Rfn_obs.Telemetry

let c_post = Telemetry.counter "mc.post_images"

type t = {
  vm : Varmap.t;
  clusters : Bdd.t array;
  schedule : int list array;
      (* schedule.(0): quantified before any cluster;
         schedule.(i+1): quantified together with cluster i *)
}

let make ?(cluster_size = 5000) vm =
  let view = Varmap.view vm in
  let man = Varmap.man vm in
  let fn = Symbolic.functions vm in
  (* One bit-relation per register, ordered by next-state variable so
     that FORCE-adjacent state bits cluster together. *)
  let bits =
    Array.to_list view.Sview.regs
    |> List.map (fun r ->
           let next =
             match Circuit.node view.Sview.circuit r with
             | Circuit.Reg { next; _ } -> next
             | _ -> assert false
           in
           let rel =
             Bdd.dxor man (Bdd.var man (Varmap.nxt_var vm r)) (fn next)
             |> Bdd.dnot man
           in
           (Varmap.nxt_var vm r, rel))
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  let clusters =
    let rec go acc current = function
      | [] -> List.rev (match current with None -> acc | Some c -> c :: acc)
      | rel :: rest -> (
        match current with
        | None -> go acc (Some rel) rest
        | Some c ->
          let c' = Bdd.dand man c rel in
          if Bdd.size man c' <= cluster_size then go acc (Some c') rest
          else go (c :: acc) (Some rel) rest)
    in
    Array.of_list (List.map (Bdd.protect man) (go [] None bits))
  in
  (* Last cluster mentioning each quantifiable variable. *)
  let quantifiable v =
    match Varmap.role vm v with
    | Varmap.Cur _ | Varmap.Inp _ -> true
    | Varmap.Nxt _ -> false
    | exception Not_found -> false
  in
  let last = Hashtbl.create 97 in
  Array.iteri
    (fun i c ->
      List.iter
        (fun v -> if quantifiable v then Hashtbl.replace last v i)
        (Bdd.support man c))
    clusters;
  let schedule = Array.make (Array.length clusters + 1) [] in
  List.iter
    (fun v ->
      let slot =
        match Hashtbl.find_opt last v with Some i -> i + 1 | None -> 0
      in
      schedule.(slot) <- v :: schedule.(slot))
    (Varmap.cur_vars vm @ Varmap.inp_vars vm);
  { vm; clusters; schedule }

let num_clusters t = Array.length t.clusters

let post t q =
  Telemetry.incr c_post;
  Telemetry.with_span "mc.image" (fun () ->
      let man = Varmap.man t.vm in
      let r = ref (Bdd.exists man t.schedule.(0) q) in
      Array.iteri
        (fun i c -> r := Bdd.and_exists man t.schedule.(i + 1) !r c)
        t.clusters;
      Varmap.rename_next_to_cur t.vm !r)

let pre_via_compose vm ~fn q =
  let man = Varmap.man vm in
  let view = Varmap.view vm in
  let subst = Hashtbl.create 97 in
  Array.iter
    (fun r ->
      match Circuit.node view.Sview.circuit r with
      | Circuit.Reg { next; _ } ->
        Hashtbl.replace subst (Varmap.cur_var vm r) (fn next)
      | _ -> assert false)
    view.Sview.regs;
  Bdd.vector_compose man (fun v -> Hashtbl.find_opt subst v) q
