open Rfn_circuit
module Bdd = Rfn_bdd.Bdd
module Telemetry = Rfn_obs.Telemetry

let c_post = Telemetry.counter "mc.post_images"
let h_step = Telemetry.histogram "mc.image_seconds"

type t = {
  vm : Varmap.t;
  clusters : Bdd.t array;
  schedule : int list array;
      (* schedule.(0): quantified before any cluster;
         schedule.(i+1): quantified together with cluster i *)
}

type cache = {
  mutable entries : (int * int * Bdd.t) array;
  mutable clusters : Bdd.t array;
}

type build_stats = { clusters_reused : int; clusters_rebuilt : int }

let cache () = { entries = [||]; clusters = [||] }

let clear_cache c =
  c.entries <- [||];
  c.clusters <- [||]

let build ?(cluster_size = 5000) ~fn ~cache vm =
  let view = Varmap.view vm in
  let man = Varmap.man vm in
  (* One bit-relation source per register, ordered by next-state
     variable so that FORCE-adjacent state bits cluster together.
     Appended variables sort after every carried one, so after an
     in-place grow the carried registers form a verbatim prefix. *)
  let entries =
    Array.to_list view.Sview.regs
    |> List.map (fun r ->
           let next =
             match Circuit.node view.Sview.circuit r with
             | Circuit.Reg { next; _ } -> next
             | _ -> assert false
           in
           (r, Varmap.nxt_var vm r, fn next))
    |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)
    |> Array.of_list
  in
  (* The cached clusters are reusable iff the old bit list is an exact
     prefix of the new one — same register, same next-state variable,
     same cone (handle equality is sound under hash-consing within one
     manager). Growth only appends, so this holds across refinements;
     any other change (reset, sifting hand-off the caller did not
     translate) invalidates the whole cache. *)
  let old = cache.entries in
  let prefix_ok =
    Array.length old <= Array.length entries
    &&
    let ok = ref true in
    Array.iteri
      (fun i (r, v, f) ->
        let r', v', f' = entries.(i) in
        if r <> r' || v <> v' || f <> f' then ok := false)
      old;
    !ok
  in
  let reused_clusters, start =
    if prefix_ok then (Array.to_list cache.clusters, Array.length old)
    else begin
      Array.iter (fun c -> Bdd.unprotect man c) cache.clusters;
      ([], 0)
    end
  in
  let bits =
    Array.sub entries start (Array.length entries - start)
    |> Array.to_list
    |> List.map (fun (_, v, f) ->
           Bdd.dnot man (Bdd.dxor man (Bdd.var man v) f))
  in
  let new_clusters =
    let rec go acc current = function
      | [] -> List.rev (match current with None -> acc | Some c -> c :: acc)
      | rel :: rest -> (
        match current with
        | None -> go acc (Some rel) rest
        | Some c ->
          let c' = Bdd.dand man c rel in
          if Bdd.size man c' <= cluster_size then go acc (Some c') rest
          else go (c :: acc) (Some rel) rest)
    in
    List.map (Bdd.protect man) (go [] None bits)
  in
  let clusters = Array.of_list (reused_clusters @ new_clusters) in
  cache.entries <- entries;
  cache.clusters <- clusters;
  (* Last cluster mentioning each quantifiable variable. The schedule
     is recomputed from scratch on every build: it is cheap (support
     scans) and must cover variables appended since the last one. *)
  let quantifiable v =
    match Varmap.role vm v with
    | Varmap.Cur _ | Varmap.Inp _ -> true
    | Varmap.Nxt _ -> false
    | exception Not_found -> false
  in
  let last = Hashtbl.create 97 in
  Array.iteri
    (fun i c ->
      List.iter
        (fun v -> if quantifiable v then Hashtbl.replace last v i)
        (Bdd.support man c))
    clusters;
  let schedule = Array.make (Array.length clusters + 1) [] in
  List.iter
    (fun v ->
      let slot =
        match Hashtbl.find_opt last v with Some i -> i + 1 | None -> 0
      in
      schedule.(slot) <- v :: schedule.(slot))
    (Varmap.cur_vars vm @ Varmap.inp_vars vm);
  ( { vm; clusters; schedule },
    {
      clusters_reused = List.length reused_clusters;
      clusters_rebuilt = List.length new_clusters;
    } )

let make ?cluster_size vm =
  fst (build ?cluster_size ~fn:(Symbolic.functions vm) ~cache:(cache ()) vm)

let num_clusters (t : t) = Array.length t.clusters

let post t q =
  Telemetry.incr c_post;
  Telemetry.time_hist h_step @@ fun () ->
  Telemetry.with_span "mc.image" (fun () ->
      let man = Varmap.man t.vm in
      let r = ref (Bdd.exists man t.schedule.(0) q) in
      Array.iteri
        (fun i c -> r := Bdd.and_exists man t.schedule.(i + 1) !r c)
        t.clusters;
      Varmap.rename_next_to_cur t.vm !r)

let pre_via_compose vm ~fn q =
  let man = Varmap.man vm in
  let view = Varmap.view vm in
  let subst = Hashtbl.create 97 in
  Array.iter
    (fun r ->
      match Circuit.node view.Sview.circuit r with
      | Circuit.Reg { next; _ } ->
        Hashtbl.replace subst (Varmap.cur_var vm r) (fn next)
      | _ -> assert false)
    view.Sview.regs;
  Bdd.vector_compose man (fun v -> Hashtbl.find_opt subst v) q
