(** Building BDDs for subcircuit cones.

    Every signal of a view becomes a function of the view's
    current-state and input variables. Signals are processed in
    topological order, so recursion depth is never an issue; gates are
    shared through the circuit's structural hashing. *)

val compile_view :
  Varmap.t -> Rfn_circuit.Sview.t -> memo:(int, Rfn_bdd.Bdd.t) Hashtbl.t -> int
(** Incremental cone compiler: walk the circuit in topological order
    and build the BDD of every view signal {e missing} from [memo],
    protecting each new entry in the varmap's manager. Returns how many
    signals were compiled. A session calls this after {!Varmap.grow}
    with its persistent memo: carried signals are skipped, so only the
    refinement delta's cones are built. May raise
    [Rfn_bdd.Bdd.Limit_exceeded]. *)

val functions : Varmap.t -> (int -> Rfn_bdd.Bdd.t)
(** [functions vm] returns a memoized lookup: the BDD of any signal
    inside the view, over [Cur] variables (registers) and [Inp]
    variables (free inputs). Raises [Invalid_argument] for signals
    outside the view. May raise [Rfn_bdd.Bdd.Limit_exceeded]. *)

val functions_for :
  Varmap.t -> Rfn_circuit.Sview.t -> (int -> Rfn_bdd.Bdd.t)
(** Like {!functions} but over a different view of the same circuit
    sharing the varmap's manager and variable assignments — used for
    the min-cut design, whose cut signals must first receive input
    variables through {!Varmap.add_input_vars}. Every free signal of
    the view needs an [Inp] variable and every register a [Cur]
    variable, else [Invalid_argument] — naming the offending signal —
    is raised during construction. *)

val initial_states : Varmap.t -> Rfn_bdd.Bdd.t
(** Conjunction of the registers' initial values over [Cur] variables;
    [`Free] registers are unconstrained. *)

val state_cube : Varmap.t -> Rfn_circuit.Cube.t -> Rfn_bdd.Bdd.t
(** BDD of a cube over register signals ([Cur] variables). Assignments
    to non-register signals are rejected with [Invalid_argument]. *)
