(** Forward reachability with on-the-fly target detection (Step 2).

    Breadth-first symbolic fixpoint from the initial states. The
    onion rings S₀, S₁, …, S_k (states first reached after exactly i
    steps) are retained: the hybrid engine walks them backwards to
    extract an abstract error trace, and the paper saves them for the
    same purpose. The run stops as soon as a ring intersects the
    target states, when the fixpoint closes, or when a resource limit
    (steps, wall-clock seconds, or the manager's node budget) is
    hit. *)

type outcome =
  | Proved  (** fixpoint closed without touching the target states *)
  | Reached of int  (** ring [k] intersects the target states *)
  | Closed of int
      (** fixpoint closed with [stop_at_bad:false]; ring [k] was the
          first to touch the target states *)
  | Aborted of Rfn_failure.resource
      (** resource limit: [Steps], [Time], or [Nodes]. Structured so
          callers can tell a retryable abort (node budget — retry with
          a reorder or a bigger budget) from a terminal one (wall-clock
          budget) without string matching. *)

type result = {
  outcome : outcome;
  rings : Rfn_bdd.Bdd.t array;  (** S₀ … S_last, disjoint *)
  reached : Rfn_bdd.Bdd.t;  (** union of the rings *)
  steps : int;
  seconds : float;
}

val run :
  ?max_steps:int ->
  ?max_seconds:float ->
  ?stop_at_bad:bool ->
  ?care:Rfn_bdd.Bdd.t ->
  Image.t ->
  vm:Varmap.t ->
  init:Rfn_bdd.Bdd.t ->
  bad_states:Rfn_bdd.Bdd.t ->
  result
(** [bad_states] must be a predicate over current-state variables
    (quantify inputs out first — see {!bad_predicate}). With
    [stop_at_bad:false] (default [true]) the fixpoint keeps running
    after touching the target states — coverage analysis wants the
    complete reachable set for its projection argument and the first
    touching ring for trace extraction.

    [care] restricts the exploration to a care set over current-state
    variables: the initial states and every ring are conjoined with it.
    Sound when every state the caller asks about satisfies [care] —
    the static-analysis pre-flight passes the proven-invariant
    constraint ({!Rfn_analysis} via the core layer), which every
    concretely reachable state satisfies, so a [Proved] outcome on the
    restricted abstract system implies one on the unrestricted
    concrete design. *)

val bad_predicate : Varmap.t -> fn:(int -> Rfn_bdd.Bdd.t) -> bad:int -> Rfn_bdd.Bdd.t
(** The target-state predicate of an unreachability property: states
    from which some input valuation drives [bad] to 1 (inputs
    existentially quantified from the bad signal's cone). *)
