(** Post-image computation with a partitioned transition relation.

    The transition relation is kept as clusters of per-register bit
    relations [x'ᵣ ≡ fᵣ(x, i)], conjoined greedily up to a size bound.
    A quantification schedule assigns every current-state and input
    variable to the last cluster whose support mentions it, so
    variables are quantified out as early as possible — the reason the
    paper's forward fixpoint tolerates abstract models with thousands
    of (pseudo-)inputs. *)

type t

type cache = {
  mutable entries : (int * int * Rfn_bdd.Bdd.t) array;
      (** per-register sources of the cached clusters, sorted by
          next-state variable: (register, next-state variable, cone) *)
  mutable clusters : Rfn_bdd.Bdd.t array;  (** protected in the manager *)
}
(** Compiled-relation cache carried across refinement iterations by a
    verification session. Fields are exposed so the session layer can
    translate handles after a reordering hand-off. *)

type build_stats = { clusters_reused : int; clusters_rebuilt : int }

val cache : unit -> cache
(** A fresh, empty cache. *)

val clear_cache : cache -> unit
(** Forget the cached relation {e without} unprotecting anything — for
    manager switches (reset, replica), where the old handles are
    meaningless in the new manager. *)

val build :
  ?cluster_size:int ->
  fn:(int -> Rfn_bdd.Bdd.t) ->
  cache:cache ->
  Varmap.t ->
  t * build_stats
(** Build the clustered relation for the varmap's view over the cone
    function [fn], reusing the cache's clusters when its per-register
    bit list is an exact prefix of the new one — which it is after
    {!Varmap.grow}, since appended next-state variables sort after
    every carried one and carried cones keep their handles. On any
    mismatch the whole cache is rebuilt (old clusters unprotected).
    The quantification schedule is recomputed either way. Updates the
    cache in place. May raise [Rfn_bdd.Bdd.Limit_exceeded]. *)

val make : ?cluster_size:int -> Varmap.t -> t
(** Build the clustered relation for the varmap's view from scratch
    with a throwaway cache (default cluster size bound: 5000 nodes).
    May raise [Rfn_bdd.Bdd.Limit_exceeded]. *)

val num_clusters : t -> int

val post : t -> Rfn_bdd.Bdd.t -> Rfn_bdd.Bdd.t
(** [post t q]: states reachable in one step from [q] (both over
    current-state variables). *)

val pre_via_compose :
  Varmap.t -> fn:(int -> Rfn_bdd.Bdd.t) -> Rfn_bdd.Bdd.t -> Rfn_bdd.Bdd.t
(** Pre-image by functional substitution: replace every current-state
    variable in the argument by the register's next-state function
    under [fn]. Used by the hybrid engine on the min-cut design, where
    it yields a predicate over current-state and (cut-)input
    variables. *)
