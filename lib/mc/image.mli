(** Post-image computation with a partitioned transition relation.

    The transition relation is kept as clusters of per-register bit
    relations [x'ᵣ ≡ fᵣ(x, i)], conjoined greedily up to a size bound.
    A quantification schedule assigns every current-state and input
    variable to the last cluster whose support mentions it, so
    variables are quantified out as early as possible — the reason the
    paper's forward fixpoint tolerates abstract models with thousands
    of (pseudo-)inputs. *)

type t

val make : ?cluster_size:int -> Varmap.t -> t
(** Build the clustered relation for the varmap's view (default
    cluster size bound: 5000 nodes). May raise
    [Rfn_bdd.Bdd.Limit_exceeded]. *)

val num_clusters : t -> int

val post : t -> Rfn_bdd.Bdd.t -> Rfn_bdd.Bdd.t
(** [post t q]: states reachable in one step from [q] (both over
    current-state variables). *)

val pre_via_compose :
  Varmap.t -> fn:(int -> Rfn_bdd.Bdd.t) -> Rfn_bdd.Bdd.t -> Rfn_bdd.Bdd.t
(** Pre-image by functional substitution: replace every current-state
    variable in the argument by the register's next-state function
    under [fn]. Used by the hybrid engine on the min-cut design, where
    it yields a predicate over current-state and (cut-)input
    variables. *)
