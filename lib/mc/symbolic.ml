open Rfn_circuit
module Bdd = Rfn_bdd.Bdd

(* Balanced reduction: a linear fold over a wide gate (a 2,000-input
   parity, say) allocates quadratically many intermediate nodes, and
   the manager has no garbage collector; divide-and-conquer keeps the
   intermediates near n·log n. *)
let reduce man op neutral args =
  let rec go lo hi =
    if hi - lo = 0 then neutral
    else if hi - lo = 1 then args.(lo)
    else
      let mid = (lo + hi) / 2 in
      op man (go lo mid) (go mid hi)
  in
  go 0 (Array.length args)

let gate_bdd man kind args =
  match kind with
  | Gate.Not -> Bdd.dnot man args.(0)
  | Gate.Buf -> args.(0)
  | Gate.And -> reduce man Bdd.dand (Bdd.one man) args
  | Gate.Nand -> Bdd.dnot man (reduce man Bdd.dand (Bdd.one man) args)
  | Gate.Or -> reduce man Bdd.dor (Bdd.zero man) args
  | Gate.Nor -> Bdd.dnot man (reduce man Bdd.dor (Bdd.zero man) args)
  | Gate.Xor -> reduce man Bdd.dxor (Bdd.zero man) args
  | Gate.Xnor -> Bdd.dnot man (reduce man Bdd.dxor (Bdd.zero man) args)
  | Gate.Mux -> Bdd.ite man args.(0) args.(2) args.(1)

let compile_view vm view ~memo =
  let man = Varmap.man vm in
  let c = view.Sview.circuit in
  let compiled = ref 0 in
  Array.iter
    (fun s ->
      if Sview.mem view s && not (Hashtbl.mem memo s) then begin
        let f =
          if Sview.is_free view s then Bdd.var man (Varmap.inp_var vm s)
          else
            match Circuit.node c s with
            | Circuit.Const b -> if b then Bdd.one man else Bdd.zero man
            | Circuit.Reg _ -> Bdd.var man (Varmap.cur_var vm s)
            | Circuit.Gate (kind, fanins) ->
              gate_bdd man kind
                (Array.map
                   (fun x ->
                     match Hashtbl.find_opt memo x with
                     | Some f -> f
                     | None ->
                       invalid_arg
                         (Printf.sprintf
                            "Symbolic.compile_view: fanin %d (%s) of signal \
                             %d (%s) not compiled (outside the view?)"
                            x (Circuit.name c x) s (Circuit.name c s)))
                   fanins)
            | Circuit.Input -> assert false
        in
        incr compiled;
        Hashtbl.replace memo s (Bdd.protect man f)
      end)
    c.Circuit.topo;
  !compiled

let functions_for vm view =
  let memo : (int, Bdd.t) Hashtbl.t = Hashtbl.create 997 in
  let built = ref false in
  fun s ->
    if not (Sview.mem view s) then
      invalid_arg "Symbolic.functions: signal outside the view";
    if not !built then begin
      ignore (compile_view vm view ~memo);
      built := true
    end;
    match Hashtbl.find_opt memo s with
    | Some f -> f
    | None ->
      invalid_arg
        (Printf.sprintf
           "Symbolic.functions: signal %d (%s) was not compiled" s
           (Circuit.name view.Sview.circuit s))

let functions vm = functions_for vm (Varmap.view vm)

let initial_states vm =
  let view = Varmap.view vm in
  let man = Varmap.man vm in
  Array.fold_left
    (fun acc r ->
      match Circuit.node view.Sview.circuit r with
      | Circuit.Reg { init = `Zero; _ } ->
        Bdd.dand man acc (Bdd.nvar man (Varmap.cur_var vm r))
      | Circuit.Reg { init = `One; _ } ->
        Bdd.dand man acc (Bdd.var man (Varmap.cur_var vm r))
      | Circuit.Reg { init = `Free; _ } -> acc
      | _ -> assert false)
    (Bdd.one man) view.Sview.regs

let state_cube vm cube =
  let man = Varmap.man vm in
  Bdd.cube man
    (List.map
       (fun (s, b) ->
         match Varmap.cur_var_opt vm s with
         | Some v -> (v, b)
         | None ->
           invalid_arg
             (Printf.sprintf
                "Symbolic.state_cube: signal %d (%s) is not a register of \
                 the view"
                s
                (Circuit.name (Varmap.view vm).Sview.circuit s)))
       (Cube.to_list cube))
