open Rfn_circuit
module Rfn = Rfn_core.Rfn
module Coverage = Rfn_core.Coverage
module Concretize = Rfn_core.Concretize
module Atpg = Rfn_atpg.Atpg

(* The five Table 1 verification problems. *)
let table1_problems ~small =
  let proc =
    if small then Rfn_designs.Processor.(make ~params:small ())
    else Rfn_designs.Processor.make ()
  in
  let fifo =
    if small then Rfn_designs.Fifo.(make ~params:small ())
    else Rfn_designs.Fifo.make ()
  in
  [
    (proc.Rfn_designs.Processor.circuit, proc.mutex);
    (proc.circuit, proc.error_flag);
    (fifo.Rfn_designs.Fifo.circuit, fifo.psh_hf);
    (fifo.circuit, fifo.psh_af);
    (fifo.circuit, fifo.psh_full);
  ]

module Table1 = struct
  type row = {
    property : string;
    coi_regs : int;
    coi_gates : int;
    seconds : float;
    result : string;
    abstract_regs : int;
    trace_cycles : int option;
    baseline : (string * float) option;
  }

  let run ?(small = false) ?(baseline = false) ?(baseline_seconds = 60.0) () =
    List.map
      (fun (circuit, (prop : Property.t)) ->
        let outcome, stats = Rfn.verify circuit prop in
        let result, trace_cycles =
          match outcome with
          | Rfn.Proved -> ("T", None)
          | Rfn.Falsified t -> ("F", Some (Trace.length t - 1))
          | Rfn.Aborted why -> ("abort: " ^ Rfn_failure.to_string why, None)
        in
        let baseline =
          if baseline then
            let verdict, secs =
              Rfn.check_coi_model_checking ~max_seconds:baseline_seconds
                circuit prop
            in
            Some
              ( (match verdict with
                | `Proved -> "T"
                | `Reached k -> Printf.sprintf "F@%d" k
                | `Aborted r -> "fails (" ^ Rfn_failure.resource_to_string r ^ ")"),
                secs )
          else None
        in
        {
          property = prop.Property.name;
          coi_regs = stats.Rfn.coi_regs;
          coi_gates = stats.Rfn.coi_gates;
          seconds = stats.Rfn.seconds;
          result;
          abstract_regs = stats.Rfn.final_abstract_regs;
          trace_cycles;
          baseline;
        })
      (table1_problems ~small)

  let print ppf rows =
    Format.fprintf ppf
      "Table 1: Property Verification Results@.%-12s %8s %9s %8s  %-6s %8s@."
      "Property" "COI regs" "COI gates" "Time(s)" "Result" "Abs regs";
    List.iter
      (fun r ->
        Format.fprintf ppf "%-12s %8d %9d %8.1f  %-6s %8d%s@." r.property
          r.coi_regs r.coi_gates r.seconds r.result r.abstract_regs
          (match r.trace_cycles with
          | Some c -> Printf.sprintf " (%d-cycle trace)" c
          | None -> "");
        match r.baseline with
        | Some (verdict, secs) ->
          Format.fprintf ppf "%-12s   [COI-MC baseline: %s after %.1fs]@." ""
            verdict secs
        | None -> ())
      rows
end

let table2_problems ~small =
  let iu =
    if small then Rfn_designs.Picojava_iu.(make ~params:small ())
    else Rfn_designs.Picojava_iu.make ()
  in
  let usb =
    if small then Rfn_designs.Usb.(make ~params:small ())
    else Rfn_designs.Usb.make ()
  in
  List.map
    (fun (name, set) -> (iu.Rfn_designs.Picojava_iu.circuit, name, set))
    iu.coverage_sets
  @ List.map
      (fun (name, set) -> (usb.Rfn_designs.Usb.circuit, name, set))
      usb.coverage_sets

module Table2 = struct
  type row = {
    set : string;
    coi_regs : int;
    coi_gates : int;
    rfn_unreachable : int;
    rfn_abstract_regs : int;
    rfn_seconds : float;
    bfs_unreachable : int;
    bfs_seconds : float;
    rfn_failure : string option;
        (** engine failure that ended the RFN analysis early, if any *)
    bfs_failure : string option;  (** same for the BFS baseline *)
  }

  let run ?(small = false) ?(budget = 20.0) ?(bfs_k = 60) () =
    List.map
      (fun (circuit, set, coverage) ->
        let coi = Coi.compute circuit ~roots:coverage in
        let config =
          {
            Rfn.default_config with
            Rfn.max_seconds = Some budget;
            max_iterations = 1_000;
          }
        in
        let rfn = Coverage.rfn_analysis ~config circuit ~coverage in
        let bfs =
          Coverage.bfs_analysis ~k:bfs_k ~max_seconds:budget circuit ~coverage
        in
        {
          set;
          coi_regs = Coi.num_regs coi;
          coi_gates = Coi.num_gates coi;
          rfn_unreachable = rfn.Coverage.unreachable;
          rfn_abstract_regs = rfn.Coverage.abstract_regs;
          rfn_seconds = rfn.Coverage.seconds;
          bfs_unreachable = bfs.Coverage.unreachable;
          bfs_seconds = bfs.Coverage.seconds;
          rfn_failure = Option.map Rfn_failure.to_string rfn.Coverage.failure;
          bfs_failure = Option.map Rfn_failure.to_string bfs.Coverage.failure;
        })
      (table2_problems ~small)

  let print ppf rows =
    Format.fprintf ppf
      "Table 2: Unreachable-coverage-state analysis@.%-6s %8s %9s %11s %8s \
       %8s %11s %8s@."
      "Set" "COI regs" "COI gates" "RFN unrch" "Abs regs" "RFN t(s)"
      "BFS unrch" "BFS t(s)";
    List.iter
      (fun r ->
        Format.fprintf ppf "%-6s %8d %9d %11d %8d %8.1f %11d %8.1f@." r.set
          r.coi_regs r.coi_gates r.rfn_unreachable r.rfn_abstract_regs
          r.rfn_seconds r.bfs_unreachable r.bfs_seconds;
        (* Engine failures are findings, not formatting: an analysis
           that stopped early must say so next to its numbers. *)
        Option.iter
          (fun f -> Format.fprintf ppf "       ^ rfn stopped early: %s@." f)
          r.rfn_failure;
        Option.iter
          (fun f -> Format.fprintf ppf "       ^ bfs stopped early: %s@." f)
          r.bfs_failure)
      rows
end

(* Runs that produce abstract error traces (the falsified property and
   the True ones during their refinement phases). *)
module Figure1 = struct
  type row = {
    experiment : string;
    iteration : int;
    model_inputs : int;
    cut_size : int;
    no_cut_steps : int;
    min_cut_steps : int;
  }

  let run ?(small = false) () =
    List.concat_map
      (fun (circuit, (prop : Property.t)) ->
        let _, stats = Rfn.verify circuit prop in
        List.mapi
          (fun i (it : Rfn.iteration) ->
            match it.Rfn.cut_size with
            | Some cut ->
              [
                {
                  experiment = prop.Property.name;
                  iteration = i + 1;
                  model_inputs = it.Rfn.model_inputs;
                  cut_size = cut;
                  no_cut_steps = it.Rfn.no_cut_steps;
                  min_cut_steps = it.Rfn.min_cut_steps;
                };
              ]
            | None -> [])
          stats.Rfn.iterations
        |> List.concat)
      (table1_problems ~small)

  let print ppf rows =
    Format.fprintf ppf
      "Figure 1: no-cut vs min-cut cubes in the hybrid engine@.%-12s %5s \
       %12s %9s %8s %8s@."
      "Experiment" "Iter" "Model inputs" "Cut size" "No-cut" "Min-cut";
    List.iter
      (fun r ->
        Format.fprintf ppf "%-12s %5d %12d %9d %8d %8d@." r.experiment
          r.iteration r.model_inputs r.cut_size r.no_cut_steps r.min_cut_steps)
      rows
end

module Guidance = struct
  type row = {
    experiment : string;
    depth : int;
    guided_found : bool;
    guided_backtracks : int;
    guided_decisions : int;
    unguided_found : bool;
    unguided_backtracks : int;
    unguided_decisions : int;
  }

  let default_budget =
    { Atpg.max_backtracks = 50_000; max_seconds = Some 30.0 }

  let run ?(small = false) ?(budget = default_budget) () =
    List.filter_map
      (fun (circuit, (prop : Property.t)) ->
        match Rfn.verify circuit prop with
        | Rfn.Falsified _, stats -> (
          match stats.Rfn.last_abstract_trace with
          | None -> None
          | Some abstract_trace ->
            let bad = prop.Property.bad in
            let depth = Trace.length abstract_trace in
            let g, gs =
              Concretize.guided ~limits:budget circuit ~bad ~abstract_trace
            in
            let u, us = Concretize.unguided ~limits:budget circuit ~bad ~depth in
            Some
              {
                experiment = prop.Property.name;
                depth = depth - 1;
                guided_found = (match g with Concretize.Found _ -> true | _ -> false);
                guided_backtracks = gs.Atpg.backtracks;
                guided_decisions = gs.Atpg.decisions;
                unguided_found = (match u with Concretize.Found _ -> true | _ -> false);
                unguided_backtracks = us.Atpg.backtracks;
                unguided_decisions = us.Atpg.decisions;
              })
        | _ -> None)
      (table1_problems ~small)

  let print ppf rows =
    Format.fprintf ppf
      "Guided vs unguided sequential ATPG on the original design@.%-12s %6s \
       %8s %11s %11s %8s %11s %11s@."
      "Experiment" "Depth" "Guided" "decisions" "backtracks" "Plain"
      "decisions" "backtracks";
    List.iter
      (fun r ->
        Format.fprintf ppf "%-12s %6d %8s %11d %11d %8s %11d %11d@."
          r.experiment r.depth
          (if r.guided_found then "found" else "lost")
          r.guided_decisions r.guided_backtracks
          (if r.unguided_found then "found" else "lost")
          r.unguided_decisions r.unguided_backtracks)
      rows
end

module Subsetting = struct
  module Bdd = Rfn_bdd.Bdd
  module Varmap = Rfn_mc.Varmap
  module Symbolic = Rfn_mc.Symbolic
  module Image = Rfn_mc.Image
  module Reach = Rfn_mc.Reach

  type row = {
    experiment : string;
    ring : int;
    original_size : int;
    subset_size : int;
    density_retained : float;
  }

  (* Run the fixpoint on a refined abstract model of each falsifiable
     problem, then subset every ring to a tenth of its size and report
     what survives — the quantitative form of the paper's "too drastic
     to produce any useful results". *)
  let run ?(small = false) () =
    List.concat_map
      (fun (circuit, (prop : Property.t)) ->
        match Rfn.verify circuit prop with
        | Rfn.Proved, _ -> []
        | (Rfn.Falsified _ | Rfn.Aborted _), stats
          when stats.Rfn.last_abstract_trace = None ->
          []
        | (Rfn.Falsified _ | Rfn.Aborted _), stats ->
          (* rebuild the final abstraction's fixpoint *)
          let regs =
            (* registers of the final model: re-derive by rerunning the
               loop is wasteful; approximate with the COI-limited
               initial abstraction refined by RFN's final size — here we
               simply reuse the whole-run approach: verify already
               proves the rings exist, so recompute from the initial
               abstraction refined with every register in the last
               abstract trace *)
            match stats.Rfn.last_abstract_trace with
            | None -> []
            | Some t ->
              List.concat_map
                (fun j -> Cube.signals (Trace.state t j))
                (List.init (Trace.length t) (fun j -> j))
              |> List.sort_uniq compare
              |> List.filter (Circuit.is_reg circuit)
          in
          let abs =
            Abstraction.with_regs circuit ~roots:(Property.roots prop) ~regs
          in
          let vm = Varmap.make abs.Abstraction.view in
          let man = Varmap.man vm in
          let fn = Symbolic.functions vm in
          let img = Image.make vm in
          let init = Symbolic.initial_states vm in
          let bad_states = Reach.bad_predicate vm ~fn ~bad:prop.Property.bad in
          let res = Reach.run ~max_steps:200 img ~vm ~init ~bad_states in
          Array.to_list
            (Array.mapi
               (fun i ring ->
                 let size = Bdd.size man ring in
                 let budget = max 10 (size / 10) in
                 let sub = Bdd.subset_heavy man ~max_size:budget ring in
                 let d0 = Bdd.density man ring in
                 {
                   experiment = prop.Property.name;
                   ring = i;
                   original_size = size;
                   subset_size = Bdd.size man sub;
                   density_retained =
                     (if d0 = 0.0 then 1.0 else Bdd.density man sub /. d0);
                 })
               res.Reach.rings))
      (table1_problems ~small)

  let print ppf rows =
    Format.fprintf ppf
      "BDD subsetting as pre-image fallback (10%% size budget)@.%-12s %5s \
       %10s %10s %10s@."
      "Experiment" "Ring" "Size" "Subset" "Retained";
    List.iter
      (fun r ->
        Format.fprintf ppf "%-12s %5d %10d %10d %9.1f%%@." r.experiment r.ring
          r.original_size r.subset_size
          (100.0 *. r.density_retained))
      rows
end

module Refinement = struct
  type row = {
    experiment : string;
    iteration : int;
    candidates : int;
    added : int;
  }

  let run ?(small = false) () =
    List.concat_map
      (fun (circuit, (prop : Property.t)) ->
        let _, stats = Rfn.verify circuit prop in
        List.mapi
          (fun i (it : Rfn.iteration) ->
            if it.Rfn.candidates > 0 then
              [
                {
                  experiment = prop.Property.name;
                  iteration = i + 1;
                  candidates = it.Rfn.candidates;
                  added = it.Rfn.added;
                };
              ]
            else [])
          stats.Rfn.iterations
        |> List.concat)
      (table1_problems ~small)

  let print ppf rows =
    Format.fprintf ppf
      "Greedy refinement minimization: candidates vs kept@.%-12s %5s %11s \
       %6s@."
      "Experiment" "Iter" "Candidates" "Kept";
    List.iter
      (fun r ->
        Format.fprintf ppf "%-12s %5d %11d %6d@." r.experiment r.iteration
          r.candidates r.added)
      rows
end
