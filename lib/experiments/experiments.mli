(** Reproduction drivers for every table and figure in the paper's
    evaluation (Section 3), plus the ablations DESIGN.md calls out.
    Shared by [bin/] and the benchmark harness. *)

(** Table 1 — property verification on the processor module and the
    FIFO controller, with the plain COI model-checking baseline. *)
module Table1 : sig
  type row = {
    property : string;
    coi_regs : int;
    coi_gates : int;
    seconds : float;
    result : string;  (** "T", "F" or an abort message *)
    abstract_regs : int;
    trace_cycles : int option;  (** length of the error trace, if any *)
    baseline : (string * float) option;  (** COI-MC verdict and time *)
  }

  val run :
    ?small:bool -> ?baseline:bool -> ?baseline_seconds:float -> unit ->
    row list

  val print : Format.formatter -> row list -> unit
end

(** Table 2 — unreachable-coverage-state analysis, RFN vs BFS. *)
module Table2 : sig
  type row = {
    set : string;
    coi_regs : int;
    coi_gates : int;
    rfn_unreachable : int;
    rfn_abstract_regs : int;
    rfn_seconds : float;
    bfs_unreachable : int;
    bfs_seconds : float;
    rfn_failure : string option;
        (** engine failure that ended the RFN analysis early, if any
            (rendered with {!Rfn_failure.to_string}) *)
    bfs_failure : string option;  (** same for the BFS baseline *)
  }

  val run : ?small:bool -> ?budget:float -> ?bfs_k:int -> unit -> row list
  val print : Format.formatter -> row list -> unit
end

(** Figure 1 — the min-cut structure of the hybrid engine: abstract
    model inputs vs min-cut inputs, and how many pre-image steps were
    solved with no-cut cubes directly vs needing ATPG extension. *)
module Figure1 : sig
  type row = {
    experiment : string;
    iteration : int;
    model_inputs : int;
    cut_size : int;
    no_cut_steps : int;
    min_cut_steps : int;
  }

  val run : ?small:bool -> unit -> row list
  val print : Format.formatter -> row list -> unit
end

(** Section 2.3 ablation — guided vs unguided sequential ATPG on the
    original design. *)
module Guidance : sig
  type row = {
    experiment : string;
    depth : int;
    guided_found : bool;
    guided_backtracks : int;
    guided_decisions : int;
    unguided_found : bool;
    unguided_backtracks : int;
    unguided_decisions : int;
  }

  val run : ?small:bool -> ?budget:Rfn_atpg.Atpg.limits -> unit -> row list
  val print : Format.formatter -> row list -> unit
end

(** Section 2.2/4 ablation — BDD subsetting as a pre-image fallback,
    the alternative the paper evaluated and rejected as "too drastic":
    heavy-branch subsetting of the reachability rings to a tenth of
    their size and the fraction of states surviving. *)
module Subsetting : sig
  type row = {
    experiment : string;
    ring : int;
    original_size : int;
    subset_size : int;
    density_retained : float;  (** fraction of ring states kept *)
  }

  val run : ?small:bool -> unit -> row list
  val print : Format.formatter -> row list -> unit
end

(** Section 2.4 ablation — the two-phase refinement: candidate-list
    sizes vs registers actually kept, per refinement iteration. *)
module Refinement : sig
  type row = {
    experiment : string;
    iteration : int;
    candidates : int;
    added : int;
  }

  val run : ?small:bool -> unit -> row list
  val print : Format.formatter -> row list -> unit
end
