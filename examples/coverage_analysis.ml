(* Unreachable-coverage-state analysis (the paper's second experiment):
   given control registers of interest, find which of their value
   combinations can never occur — dead coverage bins a simulation
   campaign should not wait for. Compares RFN against the BFS method.

   Run with:  dune exec examples/coverage_analysis.exe *)

open Rfn_circuit
module Coverage = Rfn_core.Coverage
module Rfn = Rfn_core.Rfn

let () =
  let usb = Rfn_designs.Usb.make () in
  let circuit = usb.Rfn_designs.Usb.circuit in
  Format.printf "USB controller: %a@.@." Circuit.pp_stats circuit;
  let coverage = List.assoc "USB1" usb.coverage_sets in
  Format.printf "Coverage signals (receive-FSM bits):@.";
  List.iter (fun s -> Format.printf "  %s@." (Circuit.name circuit s)) coverage;
  let config =
    { Rfn.default_config with Rfn.max_seconds = Some 30.0; max_iterations = 200 }
  in
  let rfn = Coverage.rfn_analysis ~config circuit ~coverage in
  Format.printf
    "@.RFN: of %d coverage states, %d unreachable, %d proven reachable, %d \
     unknown (%.2fs, final model %d registers)@."
    rfn.Coverage.total rfn.Coverage.unreachable rfn.Coverage.reachable
    rfn.Coverage.unknown rfn.Coverage.seconds rfn.Coverage.abstract_regs;
  let bfs = Coverage.bfs_analysis ~k:60 circuit ~coverage in
  Format.printf "BFS (60-register model): %d unreachable (%.2fs)@."
    bfs.Coverage.unreachable bfs.Coverage.seconds;
  (* show a few unreachable states decoded *)
  Format.printf "@.Some unreachable coverage states (FSM bit patterns):@.";
  let shown = ref 0 in
  Array.iteri
    (fun code status ->
      if status = Coverage.Unreachable && !shown < 5 then begin
        incr shown;
        let bits =
          List.mapi
            (fun i s ->
              Printf.sprintf "%s=%d"
                (Circuit.name circuit s)
                ((code lsr i) land 1))
            coverage
        in
        Format.printf "  %s@." (String.concat " " bits)
      end)
    rfn.Coverage.status;
  (* the one-hot intuition: any state with two FSM bits set is dead *)
  let two_hot_dead = ref true in
  Array.iteri
    (fun code status ->
      let pop =
        let rec go c n = if c = 0 then n else go (c lsr 1) (n + (c land 1)) in
        go code 0
      in
      if pop >= 2 && status <> Coverage.Unreachable then two_hot_dead := false)
    rfn.Coverage.status;
  Format.printf "@.All multi-hot FSM states identified as unreachable: %b@."
    !two_hot_dead
