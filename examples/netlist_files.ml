(* Working with textual netlists: parse a ".bench"-style file, verify a
   property on it, and write the COI-reduced design back out. This is
   the path for designs coming from outside the zoo.

   Run with:  dune exec examples/netlist_files.exe *)

open Rfn_circuit
module Rfn = Rfn_core.Rfn

let netlist =
  {|
# A saturating 3-bit credit counter with a watchdog:
# credits are granted while below the cap and consumed on demand.
INPUT(grant)
INPUT(consume)
OUTPUT(overflow)

at_cap   = AND(c_0, c_1, c_2)
can_gain = AND(grant, ngcap)
ngcap    = NOT(at_cap)
is_zero  = NOR(c_0, c_1, c_2)
can_lose = AND(consume, nzero)
nzero    = NOT(is_zero)

# next = can_lose ? credits-1 : (can_gain ? credits+1 : credits)
n0 = XOR(c_0, change)
change = OR(can_gain, can_lose)
carry1 = MUX(can_lose, c_0, nc_0)
nc_0 = NOT(c_0)
n1 = XOR(c_1, carry1_g)
carry1_g = AND(change, carry1)
carry2 = MUX(can_lose, and01, nor01)
and01 = AND(c_0, c_1)
nor01 = NOR(c_0, c_1)
n2 = XOR(c_2, carry2_g)
carry2_g = AND(change, carry2)

c_0 = DFF(n0)
c_1 = DFF(n1)
c_2 = DFF(n2)

# overflow watchdog: gaining while at the cap must never happen
overflow = AND(grant, at_cap, can_gain)

# a shadow copy of the low counter bit; the checker property below is
# only provable by reasoning about reachable states (both registers
# compute the same function, so they can never disagree)
OUTPUT(mismatch)
shadow = DFF(n0)
mismatch = XOR(shadow, c_0)
|}

let () =
  let circuit = Bench_io.parse netlist in
  Format.printf "Parsed netlist: %a@." Circuit.pp_stats circuit;
  List.iter
    (fun name ->
      let prop = Property.of_output circuit name in
      match Rfn.verify circuit prop with
      | Rfn.Proved, stats ->
        Format.printf "%s: True (unreachable) — %.3fs, %d-register model@."
          name stats.Rfn.seconds stats.Rfn.final_abstract_regs
      | Rfn.Falsified t, _ ->
        Format.printf "%s is reachable:@.%a@." name
          (Trace.pp ~names:(Circuit.name circuit))
          t
      | Rfn.Aborted why, _ ->
        Format.printf "%s aborted: %s@." name (Rfn_failure.to_string why))
    [ "overflow"; "mismatch" ];
  let prop = Property.of_output circuit "overflow" in
  (* write the COI-reduced design back out as a netlist *)
  let coi = Coi.compute circuit ~roots:(Property.roots prop) in
  Format.printf "@.COI of the property: %d registers, %d gates@."
    (Coi.num_regs coi) (Coi.num_gates coi);
  Format.printf "@.Round-tripped netlist:@.%s@." (Bench_io.to_string circuit)
