(* Verifying the FIFO controller from the paper's Table 1: three flag-
   consistency properties on a design whose 135-register COI dwarfs the
   handful of registers any proof needs. Also demonstrates the engine
   internals a paper reader might want to watch: per-iteration model
   sizes and the baseline comparison against plain COI model checking.

   Run with:  dune exec examples/fifo_verification.exe *)

open Rfn_circuit
module Rfn = Rfn_core.Rfn

let () =
  let fifo = Rfn_designs.Fifo.make () in
  let circuit = fifo.Rfn_designs.Fifo.circuit in
  Format.printf "FIFO controller: %a@.@." Circuit.pp_stats circuit;
  List.iter
    (fun (prop : Property.t) ->
      let coi = Coi.compute circuit ~roots:(Property.roots prop) in
      Format.printf "--- %s (COI: %d registers, %d gates)@." prop.Property.name
        (Coi.num_regs coi) (Coi.num_gates coi);
      (match Rfn.verify circuit prop with
      | Rfn.Proved, stats ->
        Format.printf "  RFN: True in %.2fs@." stats.Rfn.seconds;
        List.iteri
          (fun i (it : Rfn.iteration) ->
            Format.printf
              "    iteration %d: %d registers, %d free inputs, fixpoint %d \
               steps%s@."
              (i + 1) it.Rfn.abstract_regs it.Rfn.model_inputs
              it.Rfn.fixpoint_steps
              (match it.Rfn.trace_length with
              | Some l ->
                Printf.sprintf ", abstract trace of %d cycles (%d candidates, %d added)"
                  (l - 1) it.Rfn.candidates it.Rfn.added
              | None -> ""))
          stats.Rfn.iterations
      | Rfn.Falsified _, _ -> Format.printf "  RFN: False (unexpected!)@."
      | Rfn.Aborted why, _ ->
        Format.printf "  RFN: aborted (%s)@." (Rfn_failure.to_string why));
      (* the baseline the paper compares against *)
      let baseline, secs =
        Rfn.check_coi_model_checking ~max_seconds:30.0 circuit prop
      in
      Format.printf "  plain COI model checking: %s after %.2fs@.@."
        (match baseline with
        | `Proved -> "True"
        | `Reached k -> Printf.sprintf "False at depth %d" k
        | `Aborted r -> "fails — " ^ Rfn_failure.resource_to_string r)
        secs)
    [ fifo.psh_hf; fifo.psh_af; fifo.psh_full ]
