(* Quickstart: build a small gate-level design, state a safety property
   as a watchdog, and verify it with RFN.

   Run with:  dune exec examples/quickstart.exe *)

open Rfn_circuit
module B = Circuit.Builder
module Rfn = Rfn_core.Rfn

let () =
  (* A two-client round-robin arbiter. The property: the two grant
     registers are never high simultaneously. *)
  let b = B.create () in
  let req0 = B.input b "req0" and req1 = B.input b "req1" in
  let turn = B.reg b "turn" in
  let gnt0 = B.and2 b req0 (B.or2 b (B.not_ b req1) (B.not_ b turn)) in
  let gnt1 = B.and2 b req1 (B.not_ b gnt0) in
  B.connect b turn (B.mux b (B.or2 b gnt0 gnt1) turn gnt1);
  let g0 = B.reg_of b "g0" gnt0 in
  let g1 = B.reg_of b "g1" gnt1 in
  (* the watchdog: asserts exactly when the property is violated *)
  B.output b "both_grants" (B.and2 b g0 g1);
  let circuit = B.finalize b in

  Format.printf "Design: %a@." Circuit.pp_stats circuit;

  let prop = Property.of_output circuit "both_grants" in
  (match Rfn.verify circuit prop with
  | Rfn.Proved, stats ->
    Format.printf
      "PROVED: grants are mutually exclusive.@.  %d iteration(s), final \
       abstract model: %d of %d registers, %.3fs@."
      (List.length stats.Rfn.iterations)
      stats.Rfn.final_abstract_regs stats.Rfn.coi_regs stats.Rfn.seconds
  | Rfn.Falsified trace, _ ->
    Format.printf "FALSIFIED:@.%a@."
      (Trace.pp ~names:(Circuit.name circuit))
      trace
  | Rfn.Aborted why, _ ->
    Format.printf "ABORTED: %s@." (Rfn_failure.to_string why));

  (* Now a false property: the arbiter *does* grant client 0 at some
     point, so "g0 never rises" is violated — RFN produces a concrete
     error trace, validated by 3-valued replay. *)
  let b2 = B.create () in
  let req = B.input b2 "req" in
  let granted = B.reg_of b2 "granted" req in
  B.output b2 "granted_once" granted;
  let c2 = B.finalize b2 in
  let never_granted = Property.of_output c2 "granted_once" in
  match Rfn.verify c2 never_granted with
  | Rfn.Falsified trace, _ ->
    Format.printf "@.FALSIFIED (as expected), %d-cycle error trace:@.%a@."
      (Trace.length trace - 1)
      (Trace.pp ~names:(Circuit.name c2))
      trace;
    assert (Rfn_sim3v.Sim3v.replay_concrete c2 trace ~bad:never_granted.Property.bad)
  | Rfn.Proved, _ -> Format.printf "unexpectedly proved@."
  | Rfn.Aborted why, _ ->
    Format.printf "ABORTED: %s@." (Rfn_failure.to_string why)
