(* Hunting the planted protocol bug in the ~5,000-register processor
   module: the paper's "error_flag" experiment. RFN's abstract model
   stays tiny while the guided sequential ATPG concretizes a 30-cycle
   violation on the full design — something plain model checking and
   unguided ATPG both fail at.

   Run with:  dune exec examples/bug_hunt.exe             (full size)
              dune exec examples/bug_hunt.exe -- --small  (seconds)   *)

open Rfn_circuit
module Rfn = Rfn_core.Rfn
module Concretize = Rfn_core.Concretize
module Sim3v = Rfn_sim3v.Sim3v

let () =
  let small = Array.exists (( = ) "--small") Sys.argv in
  let proc =
    if small then Rfn_designs.Processor.(make ~params:small ())
    else Rfn_designs.Processor.make ()
  in
  let circuit = proc.Rfn_designs.Processor.circuit in
  let prop = proc.error_flag in
  let coi = Coi.compute circuit ~roots:(Property.roots prop) in
  Format.printf
    "Processor module: %a@.error_flag COI: %d registers, %d gates@.@."
    Circuit.pp_stats circuit (Coi.num_regs coi) (Coi.num_gates coi);
  match Rfn.verify circuit prop with
  | Rfn.Falsified trace, stats ->
    let bad = prop.Property.bad in
    Format.printf
      "DESIGN VIOLATION found in %.2fs: a %d-cycle error trace (the paper \
       reports 30 cycles).@."
      stats.Rfn.seconds
      (Trace.length trace - 1);
    Format.printf
      "Final abstract model: %d registers (of a %d-register COI), %d \
       refinement iterations.@."
      stats.Rfn.final_abstract_regs stats.Rfn.coi_regs
      (List.length stats.Rfn.iterations);
    assert (Sim3v.replay_concrete circuit trace ~bad);
    Format.printf "Trace validated by concrete replay.@.@.";
    (* the guidance ablation: how far does unguided sequential ATPG
       get at the same depth and budget? *)
    let budget = { Rfn_atpg.Atpg.max_backtracks = 20_000; max_seconds = Some 20.0 } in
    let unguided, ustats =
      Concretize.unguided ~limits:budget circuit ~bad
        ~depth:(Trace.length trace)
    in
    Format.printf "Unguided ATPG at the same depth: %s (%d decisions, %d backtracks)@."
      (match unguided with
      | Concretize.Found _ -> "found it too"
      | Concretize.Not_found_here -> "proved empty (?)"
      | Concretize.Gave_up _ -> "gave up")
      ustats.Rfn_atpg.Atpg.decisions ustats.Rfn_atpg.Atpg.backtracks;
    (* the first few cycles of the trace, restricted to the interesting
       control registers *)
    let interesting =
      List.filter_map
        (fun name ->
          match Circuit.find circuit name with
          | s -> Some s
          | exception Not_found -> None)
        [ "cnt_0"; "cnt_1"; "cnt_2"; "grant_0"; "armed"; "error_bad" ]
    in
    Format.printf "@.Control-register values along the trace:@.";
    for j = 0 to min 6 (Trace.length trace - 1) do
      let st =
        Cube.restrict (Trace.state trace j) ~keep:(fun s ->
            List.mem s interesting)
      in
      Format.printf "  cycle %2d: %a@." j
        (Cube.pp ~names:(Circuit.name circuit))
        st
    done;
    Format.printf "  ... (%d more cycles)@." (max 0 (Trace.length trace - 7))
  | Rfn.Proved, _ -> Format.printf "unexpectedly proved — the bug is planted!@."
  | Rfn.Aborted why, _ ->
    Format.printf "aborted: %s@." (Rfn_failure.to_string why)
